package mux

import (
	"reflect"
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

// buildView assembles a fakeView + output pair from a fuzzed cell placement:
// cell i goes to plane assign[i]%k with flow (i%n -> 0), FlowSeq tracked per
// input so resequencing stays legal.
func buildView(assign []uint8, k, n int, hold int64) *fakeView {
	fv := newFakeView(0, k, n, hold)
	flowSeq := make([]uint64, n)
	for i, a := range assign {
		in := cell.Port(i % n)
		c := cell.New(uint64(i), flowSeq[in], cell.Flow{In: in, Out: 0}, 0)
		flowSeq[in]++
		fv.enqueue(int(a)%k, c)
	}
	return fv
}

// drain runs the output until the planes and buffer are empty, collecting
// the departure (Seq, slot) pairs.
type departure struct {
	Seq  uint64
	Slot cell.Time
}

func drain(t *testing.T, o *Output, fv *fakeView, total int) []departure {
	t.Helper()
	var out []departure
	for slot := cell.Time(0); slot < 10000 && len(out) < total; slot++ {
		c, ok, err := o.Step(slot, fv)
		if err != nil {
			t.Fatalf("Step(%d): %v", slot, err)
		}
		if ok {
			out = append(out, departure{c.Seq, c.Depart})
		}
	}
	return out
}

// repeatedPull is the historical one-cell-at-a-time eager policy, expressed
// against the batched view: re-scan eligibility and take one head per
// round. It is the per-cell oracle PullBatch must match.
type repeatedPull struct{}

func (repeatedPull) Name() string { return "repeated-pull" }

func (repeatedPull) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	for {
		heads := pv.Eligible(t, buf.heads[:0])
		buf.heads = heads
		if len(heads) == 0 {
			return nil
		}
		r, err := pv.Take(t, heads[0].K)
		if err != nil {
			return err
		}
		buf.Push(t, r)
	}
}

// Property: for any cell placement across planes and any line hold time,
// the batched Eager policy (one Eligible + one PullBatch per slot) departs
// exactly the same cells in the same slots as taking eligible heads one at
// a time. This pins the batch protocol to the per-cell semantics the
// historical engine had.
func TestPullBatchMatchesRepeatedPull(t *testing.T) {
	prop := func(assign []uint8, holdRaw uint8) bool {
		if len(assign) > 32 {
			assign = assign[:32]
		}
		const k, n = 4, 8
		hold := int64(holdRaw%3) + 1
		fvA := buildView(assign, k, n, hold)
		fvB := buildView(assign, k, n, hold)
		oA := NewOutput(0, Eager{}, fvA.s, n)
		oB := NewOutput(0, repeatedPull{}, fvB.s, n)
		depsA := drain(t, oA, fvA, len(assign))
		depsB := drain(t, oB, fvB, len(assign))
		if !reflect.DeepEqual(depsA, depsB) {
			t.Logf("batched %v\nrepeated %v", depsA, depsB)
			return false
		}
		return fvA.s.Live() == 0 && fvB.s.Live() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: BoundedEager's one-scan selection over the Eligible snapshot
// equals the historical re-scan loop (select min-Seq among free lines,
// take, repeat up to Max). A take only consumes its own plane, so the
// snapshot minus taken entries is exactly the re-scanned set.
type rescanBounded struct{ Max int }

func (p rescanBounded) Name() string { return "rescan-bounded" }

func (p rescanBounded) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	for pulled := 0; pulled < p.Max; pulled++ {
		heads := pv.Eligible(t, buf.heads[:0])
		buf.heads = heads
		best := -1
		for i := range heads {
			if best < 0 || heads[i].Seq < heads[best].Seq {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		r, err := pv.Take(t, heads[best].K)
		if err != nil {
			return err
		}
		buf.Push(t, r)
	}
	return nil
}

func TestBoundedEagerOneScanMatchesRescan(t *testing.T) {
	prop := func(assign []uint8, maxRaw, holdRaw uint8) bool {
		if len(assign) > 24 {
			assign = assign[:24]
		}
		const k, n = 4, 8
		max := int(maxRaw%5) + 1
		hold := int64(holdRaw%2) + 1
		fvA := buildView(assign, k, n, hold)
		fvB := buildView(assign, k, n, hold)
		oA := NewOutput(0, BoundedEager{Max: max}, fvA.s, n)
		oB := NewOutput(0, rescanBounded{Max: max}, fvB.s, n)
		return reflect.DeepEqual(drain(t, oA, fvA, len(assign)), drain(t, oB, fvB, len(assign)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
