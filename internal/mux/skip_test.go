package mux

import (
	"testing"

	"ppsim/internal/cell"
)

// skipCell builds a cell of flow f with the given global and per-flow
// sequence numbers; only ordering fields matter to the resequencer.
func skipCell(f cell.Flow, seq, flowSeq uint64) cell.Cell {
	return cell.New(seq, flowSeq, f, 0)
}

// popAll drains the emittable side, returning the FlowSeqs in pop order.
func popAll(b *Buffer) []uint64 {
	var out []uint64
	for {
		c, ok := b.PopEmittable()
		if !ok {
			return out
		}
		out = append(out, c.FlowSeq)
	}
}

func TestSkipReleasesParkedSuccessor(t *testing.T) {
	f := cell.Flow{In: 0, Out: 0}
	b, push := testBuffer(4)
	push(skipCell(f, 1, 1)) // parks: waiting for FlowSeq 0
	if _, ok := b.PopEmittable(); ok {
		t.Fatal("successor emitted before its gap was resolved")
	}
	b.Skip(f, 0) // FlowSeq 0 was dropped in the switch
	if got := popAll(b); len(got) != 1 || got[0] != 1 {
		t.Errorf("popped %v, want [1]", got)
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d after drain", b.Len())
	}
}

func TestSkipOutOfOrder(t *testing.T) {
	// Two planes failing in turn can drop a flow's cells out of FlowSeq
	// order: skip 2 arrives before skip 1. Cell 3 must wait for both.
	f := cell.Flow{In: 1, Out: 0}
	b, push := testBuffer(4)
	push(skipCell(f, 0, 0))
	push(skipCell(f, 3, 3))
	b.Skip(f, 2)
	b.Skip(f, 1)
	if got := popAll(b); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("popped %v, want [0 3]", got)
	}
}

func TestSkipBeforeFirstPush(t *testing.T) {
	// The gap can be the very first cell the output ever hears about.
	f := cell.Flow{In: 0, Out: 2}
	b, push := testBuffer(4)
	b.Skip(f, 0)
	push(skipCell(f, 5, 1))
	if got := popAll(b); len(got) != 1 || got[0] != 1 {
		t.Errorf("popped %v, want [1]", got)
	}
}

func TestSkipFarAheadParksUntilReached(t *testing.T) {
	// A skip beyond the flow's frontier must not advance anything until the
	// intervening cells are delivered.
	f := cell.Flow{In: 2, Out: 0}
	b, push := testBuffer(4)
	b.Skip(f, 2)            // dropped, but 0 and 1 are still in flight
	push(skipCell(f, 9, 3)) // parks behind the gap
	push(skipCell(f, 4, 0)) // in order: emittable
	if got := popAll(b); len(got) != 1 || got[0] != 0 {
		t.Fatalf("popped %v, want [0]", got)
	}
	push(skipCell(f, 7, 1)) // delivers 1; skip of 2 then uncovers 3
	if got := popAll(b); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("popped %v, want [1 3]", got)
	}
}

func TestSkipDoesNotTouchOtherFlows(t *testing.T) {
	fa := cell.Flow{In: 0, Out: 0}
	fb := cell.Flow{In: 1, Out: 0}
	b, push := testBuffer(4)
	push(skipCell(fb, 2, 1)) // parks: fb waiting for 0
	b.Skip(fa, 0)
	if _, ok := b.PopEmittable(); ok {
		t.Error("skip of one flow released another flow's parked cell")
	}
}

func TestOutputSkipDelegates(t *testing.T) {
	s := cell.NewStore(1)
	o := NewOutput(0, Eager{}, s, 4)
	f := cell.Flow{In: 0, Out: 0}
	o.buf.Push(0, s.Put(0, skipCell(f, 1, 1)))
	if o.Buffered() != 1 {
		t.Fatalf("Buffered = %d", o.Buffered())
	}
	o.Skip(f, 0)
	if c, ok := o.buf.PopEmittable(); !ok || c.FlowSeq != 1 {
		t.Errorf("PopEmittable = %v, %v", c, ok)
	}
}
