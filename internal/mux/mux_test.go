package mux

import (
	"sort"
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/plane"
	"ppsim/internal/timing"
)

// fakeView adapts one output's slice of a plane bank for tests, speaking
// the batched PlaneView protocol over a single-shard store.
type fakeView struct {
	out    cell.Port
	s      *cell.Store
	planes []*plane.Plane
	gates  *timing.Matrix // rows = planes, cols = 1
}

func newFakeView(out cell.Port, k, n int, hold int64) *fakeView {
	fv := &fakeView{out: out, s: cell.NewStore(1), gates: timing.NewMatrix(k, 1, hold)}
	for i := 0; i < k; i++ {
		fv.planes = append(fv.planes, plane.New(cell.Plane(i), n, fv.s))
	}
	return fv
}

// enqueue stores c and queues its ref on plane k.
func (f *fakeView) enqueue(k int, c cell.Cell) error {
	return f.planes[k].Enqueue(f.s.Put(0, c))
}

func (f *fakeView) Planes() int { return len(f.planes) }

func (f *fakeView) Eligible(t cell.Time, dst []Head) []Head {
	for k, pl := range f.planes {
		r, ok := pl.HeadRef(f.out)
		if !ok || !f.gates.Gate(k, 0).Free(t) {
			continue
		}
		dst = append(dst, Head{K: cell.Plane(k), Seq: f.s.At(r).Seq})
	}
	return dst
}

func (f *fakeView) Take(t cell.Time, k cell.Plane) (cell.Ref, error) {
	if err := f.gates.Gate(int(k), 0).Seize(t); err != nil {
		return 0, err
	}
	return f.planes[k].Pop(f.out), nil
}

func (f *fakeView) PullBatch(t cell.Time, heads []Head, dst []cell.Ref) ([]cell.Ref, error) {
	for _, h := range heads {
		r, err := f.Take(t, h.K)
		if err != nil {
			return dst, err
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// mk builds a cell on its own flow (input = seq), so resequencing never
// parks it; tests that exercise parking build same-flow cells explicitly.
func mk(seq uint64, out cell.Port) cell.Cell {
	return cell.New(seq, 0, cell.Flow{In: cell.Port(seq), Out: out}, 0)
}

// testBuffer returns a buffer over its own store plus a push helper taking
// plain cells.
func testBuffer(n int) (*Buffer, func(cell.Cell)) {
	s := cell.NewStore(1)
	b := NewBuffer(s, n)
	return b, func(c cell.Cell) { b.Push(0, s.Put(0, c)) }
}

func TestBufferOrdersBySeq(t *testing.T) {
	b, push := testBuffer(16)
	for _, s := range []uint64{5, 1, 9, 0, 3} {
		push(mk(s, 0))
	}
	want := []uint64{0, 1, 3, 5, 9}
	for _, w := range want {
		c, ok := b.PopEmittable()
		if !ok || c.Seq != w {
			t.Errorf("PopEmittable = %d (%v), want %d", c.Seq, ok, w)
		}
	}
	if _, ok := b.PeekEmittable(); ok {
		t.Error("PeekEmittable on empty should be !ok")
	}
	if _, ok := b.PopEmittable(); ok {
		t.Error("PopEmittable on empty should be !ok")
	}
}

func TestBufferResequencesWithinFlow(t *testing.T) {
	// Cells 0,1,2 of one flow arrive out of order: 2 first, then 0, then
	// 1. The buffer must emit 0, 1, 2 and park until predecessors depart.
	f := cell.Flow{In: 3, Out: 0}
	b, push := testBuffer(8)
	push(cell.New(12, 2, f, 0))
	if _, ok := b.PopEmittable(); ok {
		t.Fatal("FlowSeq 2 must be parked before 0 and 1 departed")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
	push(cell.New(10, 0, f, 0))
	c, ok := b.PopEmittable()
	if !ok || c.FlowSeq != 0 {
		t.Fatalf("want FlowSeq 0, got %v %v", c, ok)
	}
	// FlowSeq 2 is still parked (1 missing).
	if _, ok := b.PopEmittable(); ok {
		t.Fatal("FlowSeq 2 must still wait for 1")
	}
	push(cell.New(11, 1, f, 0))
	c, _ = b.PopEmittable()
	if c.FlowSeq != 1 {
		t.Fatalf("want FlowSeq 1, got %v", c)
	}
	c, ok = b.PopEmittable()
	if !ok || c.FlowSeq != 2 {
		t.Fatalf("parked successor not released: %v %v", c, ok)
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d after drain", b.Len())
	}
}

func TestBufferInterleavesFlowsGlobalFCFS(t *testing.T) {
	fa := cell.Flow{In: 0, Out: 0}
	fb := cell.Flow{In: 1, Out: 0}
	b, push := testBuffer(8)
	push(cell.New(3, 0, fb, 0))
	push(cell.New(1, 0, fa, 0))
	push(cell.New(4, 1, fa, 0))
	got := []uint64{}
	for {
		c, ok := b.PopEmittable()
		if !ok {
			break
		}
		got = append(got, c.Seq)
	}
	want := []uint64{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emission order %v, want %v", got, want)
		}
	}
}

func TestBufferFreesRefsOnPop(t *testing.T) {
	s := cell.NewStore(1)
	b := NewBuffer(s, 4)
	b.Push(0, s.Put(0, mk(0, 0)))
	b.Push(0, s.Put(0, mk(1, 0)))
	if s.Live() != 2 {
		t.Fatalf("Live = %d before pops", s.Live())
	}
	b.PopEmittable()
	b.PopEmittable()
	if s.Live() != 0 {
		t.Errorf("Live = %d after drain; buffer leaked refs", s.Live())
	}
}

func TestEagerPullsAllFreePlanes(t *testing.T) {
	fv := newFakeView(0, 3, 2, 2)
	fv.enqueue(0, mk(0, 0))
	fv.enqueue(1, mk(1, 0))
	fv.enqueue(2, mk(2, 0))
	o := NewOutput(0, Eager{}, fv.s, 32)
	c, ok, err := o.Step(0, fv)
	if err != nil || !ok {
		t.Fatalf("Step: %v %v", ok, err)
	}
	if c.Seq != 0 || c.Depart != 0 {
		t.Errorf("first departure %v", c)
	}
	// All three were pulled into the buffer; two remain.
	if o.Buffered() != 2 {
		t.Errorf("Buffered = %d, want 2", o.Buffered())
	}
	// Gates are now busy (hold=2): slot 1 pulls nothing but emits.
	c, ok, _ = o.Step(1, fv)
	if !ok || c.Seq != 1 {
		t.Errorf("second departure %v %v", c, ok)
	}
}

func TestOutputConstraintLimitsDrainRate(t *testing.T) {
	// c cells concentrated in one plane with hold r' drain one per r'
	// slots — the Lemma 4 mechanism.
	const rPrime, c = 3, 4
	fv := newFakeView(0, 1, 2, rPrime)
	for i := uint64(0); i < c; i++ {
		fv.enqueue(0, mk(i, 0))
	}
	o := NewOutput(0, Eager{}, fv.s, 32)
	var departs []cell.Time
	for slot := cell.Time(0); slot < 20 && len(departs) < c; slot++ {
		if dc, ok, err := o.Step(slot, fv); err != nil {
			t.Fatal(err)
		} else if ok {
			departs = append(departs, dc.Depart)
		}
	}
	want := []cell.Time{0, rPrime, 2 * rPrime, 3 * rPrime}
	for i := range want {
		if departs[i] != want[i] {
			t.Errorf("departure %d at slot %d, want %d", i, departs[i], want[i])
		}
	}
}

func TestLazyPullsEarliestOnly(t *testing.T) {
	fv := newFakeView(0, 3, 2, 1)
	fv.enqueue(2, mk(0, 0)) // earliest cell on plane 2
	fv.enqueue(0, mk(1, 0))
	o := NewOutput(0, LazyFCFS{}, fv.s, 32)
	c, ok, err := o.Step(0, fv)
	if err != nil || !ok || c.Seq != 0 {
		t.Fatalf("lazy should pull and emit seq 0: %v %v %v", c, ok, err)
	}
	if o.Buffered() != 0 {
		t.Errorf("lazy pulled extra cells: %d buffered", o.Buffered())
	}
	if fv.planes[0].QueueLen(0) != 1 {
		t.Error("plane 0 should still hold its cell")
	}
}

func TestBoundedEagerBudget(t *testing.T) {
	fv := newFakeView(0, 4, 2, 1)
	for i := uint64(0); i < 4; i++ {
		fv.enqueue(int(i), mk(i, 0))
	}
	o := NewOutput(0, BoundedEager{Max: 2}, fv.s, 32)
	c, ok, err := o.Step(0, fv)
	if err != nil || !ok || c.Seq != 0 {
		t.Fatalf("Step: %v %v %v", c, ok, err)
	}
	// Budget 2: one emitted, one buffered, two still in planes.
	if o.Buffered() != 1 {
		t.Errorf("Buffered = %d, want 1", o.Buffered())
	}
	left := 0
	for k := 0; k < 4; k++ {
		left += fv.planes[k].QueueLen(0)
	}
	if left != 2 {
		t.Errorf("planes hold %d cells, want 2", left)
	}
}

func TestBoundedEagerDegenerateCases(t *testing.T) {
	// Max = 1 behaves like LazyFCFS; Max >= K like Eager.
	fv := newFakeView(0, 3, 2, 1)
	fv.enqueue(1, mk(0, 0))
	fv.enqueue(2, mk(1, 0))
	o := NewOutput(0, BoundedEager{Max: 1}, fv.s, 32)
	if c, ok, _ := o.Step(0, fv); !ok || c.Seq != 0 {
		t.Fatal("Max=1 must pull the earliest head only")
	}
	if o.Buffered() != 0 {
		t.Error("Max=1 must not over-pull")
	}
	fv2 := newFakeView(0, 3, 2, 1)
	o2 := NewOutput(0, BoundedEager{Max: 8}, fv2.s, 32)
	fv2.enqueue(0, mk(2, 0))
	fv2.enqueue(1, mk(3, 0))
	if _, ok, _ := o2.Step(0, fv2); !ok {
		t.Fatal("Max>=K must behave eagerly")
	}
	if o2.Buffered() != 1 {
		t.Errorf("eager-equivalent should have buffered the second cell, got %d", o2.Buffered())
	}
}

func TestBoundedEagerRejectsBadBudget(t *testing.T) {
	fv := newFakeView(0, 2, 2, 1)
	fv.enqueue(0, mk(0, 0))
	o := NewOutput(0, BoundedEager{Max: 0}, fv.s, 32)
	if _, _, err := o.Step(0, fv); err == nil {
		t.Error("budget 0 must error")
	}
	if (BoundedEager{Max: 3}).Name() != "bounded-eager-3" {
		t.Error("Name wrong")
	}
}

func TestOutputRejectsForeignCell(t *testing.T) {
	fv := newFakeView(1, 1, 2, 1)
	fv.enqueue(0, mk(0, 1))
	o := NewOutput(0, Eager{}, fv.s, 32) // output 0 draining output 1's view: miswired
	// fakeView serves queue for its own out=1, so the pulled cell is for
	// output 1 while o believes it is output 0.
	if _, _, err := o.Step(0, fv); err == nil {
		t.Error("miswired cell must be rejected")
	}
}

func TestUtilization(t *testing.T) {
	fv := newFakeView(0, 1, 2, 1)
	o := NewOutput(0, Eager{}, fv.s, 32)
	if o.Utilization() != 0 {
		t.Error("idle output utilization should be 0")
	}
	fv.enqueue(0, mk(0, 0))
	o.Step(0, fv)
	// Idle gap.
	o.Step(1, fv)
	o.Step(2, fv)
	fv.enqueue(0, mk(1, 0))
	o.Step(3, fv)
	// busy 2 of span 4 slots.
	if got := o.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %f, want 0.5", got)
	}
	if o.BusySlots() != 2 {
		t.Errorf("BusySlots = %d", o.BusySlots())
	}
}

func TestNewOutputNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewOutput(0, nil, cell.NewStore(1), 2)
}

func TestNewOutputNilStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewOutput(0, Eager{}, nil, 2)
}

// Property: with eager pulling and hold 1, departures are exactly in global
// sequence order, one per slot, regardless of which planes cells sit in.
func TestEagerFCFSDepartureOrder(t *testing.T) {
	prop := func(assign []uint8) bool {
		const k = 4
		fv := newFakeView(0, k, 2, 1)
		seqs := make([]uint64, 0, len(assign))
		for i, a := range assign {
			if i >= 24 {
				break
			}
			fv.enqueue(int(a%k), mk(uint64(i), 0))
			seqs = append(seqs, uint64(i))
		}
		o := NewOutput(0, Eager{}, fv.s, 32)
		var got []uint64
		for slot := cell.Time(0); slot < 100 && len(got) < len(seqs); slot++ {
			if c, ok, err := o.Step(slot, fv); err != nil {
				return false
			} else if ok {
				got = append(got, c.Seq)
			}
		}
		if len(got) != len(seqs) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
