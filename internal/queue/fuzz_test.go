package queue

import "testing"

// FuzzFIFOAgainstModel drives the ring buffer with an arbitrary op stream
// and compares against a plain slice model: byte values select push (even)
// or pop/removeAt (odd), with the payload derived from the position.
func FuzzFIFOAgainstModel(f *testing.F) {
	f.Add([]byte{0, 2, 1, 4, 3})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 7, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		q := New[int](0)
		var model []int
		for i, op := range ops {
			switch {
			case op%2 == 0: // push
				q.Push(i)
				model = append(model, i)
			case len(model) == 0:
				// nothing to pop; verify emptiness is consistent
				if !q.Empty() {
					t.Fatal("queue should be empty")
				}
			case op%4 == 1: // pop head
				want := model[0]
				model = model[1:]
				if got := q.Pop(); got != want {
					t.Fatalf("Pop = %d, want %d", got, want)
				}
			default: // remove at arbitrary index
				idx := int(op) % len(model)
				want := model[idx]
				model = append(model[:idx], model[idx+1:]...)
				if got := q.RemoveAt(idx); got != want {
					t.Fatalf("RemoveAt(%d) = %d, want %d", idx, got, want)
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", q.Len(), len(model))
			}
			if len(model) > 0 {
				if q.Peek() != model[0] {
					t.Fatalf("Peek = %d, model head %d", q.Peek(), model[0])
				}
				mid := len(model) / 2
				if q.At(mid) != model[mid] {
					t.Fatalf("At(%d) = %d, model %d", mid, q.At(mid), model[mid])
				}
			}
		}
		snap := q.Snapshot()
		if len(snap) != len(model) {
			t.Fatalf("Snapshot len %d, model %d", len(snap), len(model))
		}
		for i := range model {
			if snap[i] != model[i] {
				t.Fatalf("Snapshot[%d] = %d, model %d", i, snap[i], model[i])
			}
		}
	})
}
