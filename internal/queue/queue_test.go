package queue

import (
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var q FIFO[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero value should be empty")
	}
	q.Push(1)
	q.Push(2)
	if q.Pop() != 1 || q.Pop() != 2 {
		t.Error("FIFO order violated on zero value")
	}
}

func TestPushPopOrder(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop #%d = %d", i, got)
		}
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](8)
	// Interleave pushes and pops so head wraps repeatedly.
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			q.Push(round*5 + i)
		}
		for i := 0; i < 5; i++ {
			if got := q.Pop(); got != next {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, next)
			}
			next++
		}
	}
}

func TestPeekAndAt(t *testing.T) {
	q := New[string](2)
	q.Push("a")
	q.Push("b")
	q.Push("c")
	if q.Peek() != "a" {
		t.Errorf("Peek = %q", q.Peek())
	}
	if q.At(0) != "a" || q.At(1) != "b" || q.At(2) != "c" {
		t.Error("At returned wrong elements")
	}
	if q.Len() != 3 {
		t.Error("Peek/At must not consume")
	}
}

func TestSnapshot(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	for i := 0; i < 6; i++ {
		q.Pop()
	}
	for i := 10; i < 14; i++ {
		q.Push(i) // forces wrap in the size-16 buffer? ensure mixed state
	}
	snap := q.Snapshot()
	want := []int{6, 7, 8, 9, 10, 11, 12, 13}
	if len(snap) != len(want) {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("Snapshot[%d] = %d, want %d", i, snap[i], want[i])
		}
	}
}

func TestRemoveAt(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if got := q.RemoveAt(2); got != 2 {
		t.Fatalf("RemoveAt(2) = %d", got)
	}
	want := []int{0, 1, 3, 4}
	for i, w := range want {
		if got := q.Pop(); got != w {
			t.Errorf("after RemoveAt, Pop #%d = %d, want %d", i, got, w)
		}
	}
}

func TestRemoveAtHeadAndTail(t *testing.T) {
	q := New[int](2)
	q.Push(10)
	q.Push(11)
	q.Push(12)
	if q.RemoveAt(0) != 10 {
		t.Error("RemoveAt head")
	}
	if q.RemoveAt(q.Len()-1) != 12 {
		t.Error("RemoveAt tail")
	}
	if q.Pop() != 11 || !q.Empty() {
		t.Error("remaining element wrong")
	}
}

func TestReset(t *testing.T) {
	q := New[int](2)
	for i := 0; i < 20; i++ {
		q.Push(i)
	}
	q.Reset()
	if !q.Empty() {
		t.Error("Reset should empty the queue")
	}
	q.Push(99)
	if q.Pop() != 99 {
		t.Error("queue unusable after Reset")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var q FIFO[int]
	q.Pop()
}

func TestPeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var q FIFO[int]
	q.Peek()
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	q := New[int](2)
	q.Push(1)
	q.At(1)
}

// Property: for any sequence of push/pop operations, the FIFO behaves
// exactly like an ideal slice-based queue.
func TestFIFOMatchesModel(t *testing.T) {
	prop := func(ops []int16) bool {
		q := New[int16](0)
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.Push(op)
				model = append(model, op)
			} else if len(model) > 0 {
				want := model[0]
				model = model[1:]
				if q.Pop() != want {
					return false
				}
			}
			if q.Len() != len(model) {
				return false
			}
			if len(model) > 0 && q.Peek() != model[0] {
				return false
			}
		}
		// Drain and compare the remainder.
		for _, want := range model {
			if q.Pop() != want {
				return false
			}
		}
		return q.Empty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RemoveAt(i) behaves like deleting index i from a slice model.
func TestRemoveAtMatchesModel(t *testing.T) {
	prop := func(vals []int8, removals []uint8) bool {
		q := New[int8](0)
		model := make([]int8, 0, len(vals))
		for _, v := range vals {
			q.Push(v)
			model = append(model, v)
		}
		for _, r := range removals {
			if len(model) == 0 {
				break
			}
			i := int(r) % len(model)
			got := q.RemoveAt(i)
			want := model[i]
			model = append(model[:i], model[i+1:]...)
			if got != want || q.Len() != len(model) {
				return false
			}
		}
		for _, want := range model {
			if q.Pop() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int](16)
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%2 == 1 {
			q.Pop()
			q.Pop()
		}
	}
}
