package queue

import "testing"

// naiveQueue is the slice-append FIFO the ring buffer replaces; kept here
// for the DESIGN.md §5 ablation (BenchmarkAblationQueueImpl).
type naiveQueue[T any] struct{ s []T }

func (q *naiveQueue[T]) Push(v T) { q.s = append(q.s, v) }
func (q *naiveQueue[T]) Pop() T {
	v := q.s[0]
	q.s = q.s[1:]
	return v
}
func (q *naiveQueue[T]) Len() int { return len(q.s) }

// The workload mirrors a plane queue under load: bursts of pushes drained
// with interleaved pops, keeping a standing backlog so the ring wraps.
func BenchmarkAblationQueueImpl(b *testing.B) {
	const backlog = 64
	b.Run("ring", func(b *testing.B) {
		q := New[int](8)
		for i := 0; i < backlog; i++ {
			q.Push(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Push(i)
			q.Pop()
		}
	})
	b.Run("slice-append", func(b *testing.B) {
		var q naiveQueue[int]
		for i := 0; i < backlog; i++ {
			q.Push(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Push(i)
			q.Pop()
		}
	})
}
