package queue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapOrdersElements(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(7))
	in := make([]int, 500)
	for i := range in {
		in[i] = rng.Intn(100)
		h.Push(in[i])
	}
	sort.Ints(in)
	for i, want := range in {
		if got := h.Peek(); got != want {
			t.Fatalf("Peek #%d = %d, want %d", i, got, want)
		}
		if got := h.Pop(); got != want {
			t.Fatalf("Pop #%d = %d, want %d", i, got, want)
		}
	}
	if !h.Empty() || h.Len() != 0 {
		t.Errorf("heap not empty after draining: len=%d", h.Len())
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(3))
	var mirror []int
	for op := 0; op < 5000; op++ {
		if h.Len() == 0 || rng.Intn(3) != 0 {
			v := rng.Intn(1000)
			h.Push(v)
			mirror = append(mirror, v)
			sort.Ints(mirror)
		} else {
			if got := h.Pop(); got != mirror[0] {
				t.Fatalf("op %d: Pop = %d, want %d", op, got, mirror[0])
			}
			mirror = mirror[1:]
		}
	}
}

func TestHeapPanicsWhenEmpty(t *testing.T) {
	for _, f := range []func(*Heap[int]){
		func(h *Heap[int]) { h.Pop() },
		func(h *Heap[int]) { h.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on empty heap")
				}
			}()
			f(NewHeap[int](func(a, b int) bool { return a < b }))
		}()
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Reset()
	if !h.Empty() {
		t.Fatal("Reset left elements behind")
	}
	h.Push(42)
	if got := h.Pop(); got != 42 {
		t.Errorf("Pop after Reset = %d, want 42", got)
	}
}

// TestHeapSteadyStateAllocs pins the hot-path property the mux relies on:
// once warm, a Push/Pop cycle performs zero heap allocations.
func TestHeapSteadyStateAllocs(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	for i := 0; i < 64; i++ {
		h.Push(i)
	}
	for !h.Empty() {
		h.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(63 - i)
		}
		for !h.Empty() {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Push/Pop cycle allocates %.1f times, want 0", allocs)
	}
}
