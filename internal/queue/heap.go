package queue

// Heap is a binary min-heap with an explicit ordering function, backed by a
// slice that keeps its capacity across Push/Pop cycles. It replaces
// container/heap in the per-slot hot path: the standard library's interface
// signature boxes every element into an interface{}, which costs one heap
// allocation per Push and Pop of a value type like cell.Cell, while this
// heap stores elements inline.
//
// The zero value is unusable — the ordering must be supplied via NewHeap.
type Heap[T any] struct {
	less func(a, b T) bool
	buf  []T
}

// NewHeap returns an empty heap ordered by less (a strict weak ordering;
// the minimum element under less is popped first).
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of elements held.
func (h *Heap[T]) Len() int { return len(h.buf) }

// Empty reports whether the heap holds no elements.
func (h *Heap[T]) Empty() bool { return len(h.buf) == 0 }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.buf = append(h.buf, v)
	h.up(len(h.buf) - 1)
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap, mirroring FIFO.Peek: reading from an empty switch structure
// is a scheduling bug.
func (h *Heap[T]) Peek() T {
	if len(h.buf) == 0 {
		panic("queue: Peek on empty Heap")
	}
	return h.buf[0]
}

// Pop removes and returns the minimum element. It panics on an empty heap.
// The backing slice keeps its capacity, so a steady-state Push/Pop cycle
// performs no allocation.
func (h *Heap[T]) Pop() T {
	if len(h.buf) == 0 {
		panic("queue: Pop on empty Heap")
	}
	n := len(h.buf) - 1
	v := h.buf[0]
	h.buf[0] = h.buf[n]
	var zero T
	h.buf[n] = zero // release references for GC
	h.buf = h.buf[:n]
	if n > 0 {
		h.down(0)
	}
	return v
}

// Reset drops all elements, retaining the allocated buffer.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.buf {
		h.buf[i] = zero
	}
	h.buf = h.buf[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.buf[i], h.buf[parent]) {
			return
		}
		h.buf[i], h.buf[parent] = h.buf[parent], h.buf[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.buf)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h.less(h.buf[r], h.buf[l]) {
			min = r
		}
		if !h.less(h.buf[min], h.buf[i]) {
			return
		}
		h.buf[i], h.buf[min] = h.buf[min], h.buf[i]
		i = min
	}
}
