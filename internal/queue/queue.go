// Package queue provides the FIFO queues used throughout the switch models:
// the per-output queues of each plane, the shadow switch's output queues, the
// PPS output-port reassembly buffers and the input-port buffers of the
// buffered PPS variant.
//
// The implementation is a growable ring buffer. Switch simulations enqueue
// and dequeue on every time-slot, so avoiding per-operation allocation
// dominates the engine's throughput (see BenchmarkAblationQueueImpl at the
// repository root for the ablation against a naive slice-append queue).
package queue

// FIFO is a first-in first-out queue backed by a growable ring buffer.
// The zero value is an empty queue ready for use.
type FIFO[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of elements
}

// New returns a FIFO with capacity pre-allocated for at least hint elements.
func New[T any](hint int) *FIFO[T] {
	if hint < 0 {
		hint = 0
	}
	return &FIFO[T]{buf: make([]T, roundUp(hint))}
}

// roundUp returns the smallest power of two >= n, minimum 8, so that ring
// arithmetic stays cheap and growth is geometric.
func roundUp(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Empty reports whether the queue holds no elements.
func (q *FIFO[T]) Empty() bool { return q.n == 0 }

// Push appends v to the tail of the queue.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Pop removes and returns the head of the queue. It panics on an empty
// queue: popping from an empty switch queue indicates a scheduling bug, and
// silently returning a zero cell would corrupt the simulation.
func (q *FIFO[T]) Pop() T {
	if q.n == 0 {
		panic("queue: Pop on empty FIFO")
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Peek returns the head of the queue without removing it. It panics on an
// empty queue for the same reason as Pop.
func (q *FIFO[T]) Peek() T {
	if q.n == 0 {
		panic("queue: Peek on empty FIFO")
	}
	return q.buf[q.head]
}

// At returns the i-th element from the head (At(0) == Peek()) without
// removing it. It panics if i is out of range.
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("queue: At index out of range")
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// Reset drops all elements, retaining the allocated buffer.
func (q *FIFO[T]) Reset() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = zero
	}
	q.head, q.n = 0, 0
}

// grow doubles the buffer, un-wrapping the ring into the new slice.
func (q *FIFO[T]) grow() {
	if len(q.buf) == 0 {
		q.buf = make([]T, 8)
		return
	}
	nb := make([]T, len(q.buf)*2)
	q.copyInto(nb)
	q.buf = nb
	q.head = 0
}

func (q *FIFO[T]) copyInto(dst []T) {
	first := copy(dst, q.buf[q.head:])
	if first < q.n {
		copy(dst[first:], q.buf[:q.n-first])
	}
}

// Snapshot returns the queued elements head-to-tail in a fresh slice.
// It is used by demultiplexors that inspect buffer contents (Definition 2
// of the paper models the input buffer as a vector of destinations).
func (q *FIFO[T]) Snapshot() []T {
	out := make([]T, q.n)
	q.copyInto(out)
	return out
}

// RemoveAt removes and returns the i-th element from the head, shifting the
// later elements forward. It is O(n) and exists for input-buffered
// demultiplexors, which may dispatch any buffered cell, not only the head
// (Definition 2 allows the demultiplexor to send "any number of buffered
// cells" per slot). It panics if i is out of range.
func (q *FIFO[T]) RemoveAt(i int) T {
	if i < 0 || i >= q.n {
		panic("queue: RemoveAt index out of range")
	}
	v := q.At(i)
	mask := len(q.buf) - 1
	for k := i; k < q.n-1; k++ {
		q.buf[(q.head+k)&mask] = q.buf[(q.head+k+1)&mask]
	}
	var zero T
	q.buf[(q.head+q.n-1)&mask] = zero
	q.n--
	return v
}
