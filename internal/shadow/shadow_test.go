package shadow

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/traffic"
)

func TestImmediateDeparture(t *testing.T) {
	s := New(2)
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 0, Out: 1}, 0)
	out := s.Step(0, []cell.Cell{c}, nil)
	if len(out) != 1 {
		t.Fatalf("departures = %d, want 1", len(out))
	}
	if out[0].Depart != 0 {
		t.Errorf("Depart = %d, want 0 (same-slot departure)", out[0].Depart)
	}
	if !s.Drained() {
		t.Error("switch should be drained")
	}
}

func TestFCFSAcrossInputs(t *testing.T) {
	s := New(3)
	st := cell.NewStamper()
	// Three cells for output 0 in one slot, from inputs 0,1,2 in seq order.
	var cells []cell.Cell
	for i := 0; i < 3; i++ {
		cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(i), Out: 0}, 0))
	}
	var deps []cell.Cell
	deps = s.Step(0, cells, deps)
	deps = s.Step(1, nil, deps)
	deps = s.Step(2, nil, deps)
	if len(deps) != 3 {
		t.Fatalf("departures = %d", len(deps))
	}
	for i, d := range deps {
		if d.Seq != uint64(i) || d.Depart != cell.Time(i) {
			t.Errorf("departure %d: seq=%d depart=%d", i, d.Seq, d.Depart)
		}
	}
}

func TestIndependentOutputs(t *testing.T) {
	s := New(2)
	st := cell.NewStamper()
	a := st.Stamp(cell.Flow{In: 0, Out: 0}, 0)
	b := st.Stamp(cell.Flow{In: 1, Out: 1}, 0)
	out := s.Step(0, []cell.Cell{a, b}, nil)
	if len(out) != 2 {
		t.Fatalf("both outputs should emit in slot 0, got %d", len(out))
	}
}

func TestWorkConservation(t *testing.T) {
	// Under any admissible trace, every output with pending cells emits
	// exactly one cell per slot: total departures over [0, T) equals
	// min(arrived-so-far, busy capacity) per output. Check the direct
	// invariant: queue nonempty at slot start implies a departure.
	prop := func(raw []uint16) bool {
		const n = 4
		tr := traffic.NewTrace()
		for k, r := range raw {
			if k > 80 {
				break
			}
			tr.Add(cell.Time(r%32), cell.Port(int(r/32)%n), cell.Port(int(r/128)%n))
		}
		s := New(n)
		st := cell.NewStamper()
		var buf []traffic.Arrival
		var deps []cell.Cell
		for slot := cell.Time(0); slot < 200 && (slot < tr.End() || !s.Drained()); slot++ {
			buf = tr.Arrivals(slot, buf[:0])
			pending := make([]bool, n)
			for j := 0; j < n; j++ {
				pending[j] = s.QueueLen(cell.Port(j)) > 0
			}
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
				pending[a.Out] = true
			}
			deps = s.Step(slot, cells, deps[:0])
			emitted := make([]bool, n)
			for _, d := range deps {
				if emitted[d.Flow.Out] {
					return false // two departures from one output in a slot
				}
				emitted[d.Flow.Out] = true
			}
			for j := 0; j < n; j++ {
				if pending[j] && !emitted[j] {
					return false // work conservation violated
				}
			}
		}
		return s.Drained()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDelayBoundedByBurstiness(t *testing.T) {
	// Cruz: a work-conserving FCFS switch under (R, B) traffic delays cells
	// at most B slots. Feed a B-burst and check.
	const n, B = 8, 5
	s := New(n)
	st := cell.NewStamper()
	var cells []cell.Cell
	for i := 0; i <= B; i++ { // B+1 cells in one slot = burstiness B
		cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(i), Out: 0}, 0))
	}
	var deps []cell.Cell
	for slot := cell.Time(0); !s.Drained() || slot == 0; slot++ {
		if slot == 0 {
			deps = s.Step(slot, cells, deps)
		} else {
			deps = s.Step(slot, nil, deps)
		}
	}
	for _, d := range deps {
		if delay := d.QueuingDelay(); delay > B {
			t.Errorf("delay %d exceeds burstiness bound %d", delay, B)
		}
	}
}

func TestStepPanicsOnSkipWithBacklog(t *testing.T) {
	s := New(2)
	st := cell.NewStamper()
	a := st.Stamp(cell.Flow{In: 0, Out: 0}, 0)
	b := st.Stamp(cell.Flow{In: 1, Out: 0}, 0)
	s.Step(0, []cell.Cell{a, b}, nil) // one departs, one queued
	defer func() {
		if recover() == nil {
			t.Error("expected panic on slot skip with backlog")
		}
	}()
	s.Step(5, nil, nil)
}

func TestStepPanicsOnNonMonotone(t *testing.T) {
	s := New(2)
	s.Step(3, nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Step(3, nil, nil)
}

func TestOracleMatchesSwitch(t *testing.T) {
	prop := func(raw []uint16) bool {
		const n = 4
		tr := traffic.NewTrace()
		for k, r := range raw {
			if k > 60 {
				break
			}
			tr.Add(cell.Time(r%24), cell.Port(int(r/24)%n), cell.Port(int(r/96)%n))
		}
		s := New(n)
		o := NewOracle(n)
		st := cell.NewStamper()
		predicted := make(map[uint64]cell.Time)
		var buf []traffic.Arrival
		var deps []cell.Cell
		for slot := cell.Time(0); slot < 200 && (slot < tr.End() || !s.Drained()); slot++ {
			buf = tr.Arrivals(slot, buf[:0])
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				c := st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot)
				peeked := o.Peek(slot, a.Out)
				predicted[c.Seq] = o.Departure(slot, a.Out)
				if peeked != predicted[c.Seq] {
					return false // Peek must predict Departure exactly
				}
				cells = append(cells, c)
			}
			deps = s.Step(slot, cells, deps[:0])
			for _, d := range deps {
				if predicted[d.Seq] != d.Depart {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}
