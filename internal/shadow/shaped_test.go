package shadow

import (
	"testing"

	"ppsim/internal/cell"
)

func TestShapedValidation(t *testing.T) {
	if _, err := NewShaped(0, 1); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := NewShaped(2, -1); err == nil {
		t.Error("negative delay must be rejected")
	}
	s, err := NewShaped(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ports() != 2 || s.TargetDelay() != 3 {
		t.Error("accessors wrong")
	}
}

func TestShapedHoldsExactlyD(t *testing.T) {
	s, _ := NewShaped(2, 4)
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 0, Out: 1}, 2)
	var deps []cell.Cell
	for slot := cell.Time(2); slot < 10; slot++ {
		var in []cell.Cell
		if slot == 2 {
			in = []cell.Cell{c}
		}
		deps = s.Step(slot, in, deps)
	}
	if len(deps) != 1 || deps[0].Depart != 6 {
		t.Fatalf("departure = %v, want slot 6", deps)
	}
}

func TestShapedIsNotWorkConserving(t *testing.T) {
	// A cell is pending at slot 0 but nothing departs until D: the
	// defining violation of work conservation.
	s, _ := NewShaped(2, 5)
	st := cell.NewStamper()
	deps := s.Step(0, []cell.Cell{st.Stamp(cell.Flow{In: 0, Out: 0}, 0)}, nil)
	if len(deps) != 0 {
		t.Fatal("shaped switch must idle while the cell ages")
	}
	if s.Backlog() != 1 {
		t.Fatal("cell should be queued")
	}
}

func TestShapedSerializesBursts(t *testing.T) {
	// Three simultaneous cells for one output: first departs at D, the
	// rest on the following slots (one per slot).
	s, _ := NewShaped(4, 2)
	st := cell.NewStamper()
	var cells []cell.Cell
	for i := 0; i < 3; i++ {
		cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(i), Out: 0}, 0))
	}
	var deps []cell.Cell
	for slot := cell.Time(0); !s.Drained(); slot++ {
		var in []cell.Cell
		if slot == 0 {
			in = cells
		}
		deps = s.Step(slot, in, deps)
		if slot > 20 {
			t.Fatal("did not drain")
		}
	}
	want := []cell.Time{2, 3, 4}
	for i, d := range deps {
		if d.Depart != want[i] {
			t.Errorf("departure %d at slot %d, want %d", i, d.Depart, want[i])
		}
	}
}

func TestShapedZeroDelayIsFCFSLike(t *testing.T) {
	// D = 0 behaves like the work-conserving switch for a single flow.
	s, _ := NewShaped(2, 0)
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 0, Out: 1}, 0)
	deps := s.Step(0, []cell.Cell{c}, nil)
	if len(deps) != 1 || deps[0].Depart != 0 {
		t.Errorf("D=0 should emit immediately: %v", deps)
	}
}
