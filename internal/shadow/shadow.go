// Package shadow implements the reference switch the PPS is measured
// against: an optimal work-conserving output-queued switch operating at the
// external rate R, following a global FCFS discipline (cells leave each
// output in the order they arrived to the switch, regardless of flow).
//
// The paper calls this the "shadow switch" or "reference switch"; it
// receives exactly the same stream of flows as the PPS, and the *relative*
// queuing delay of the PPS is the excess of its per-cell delay over the
// shadow's (Section 1.1). A work-conserving switch guarantees that if a cell
// is pending for output j at slot t, some cell leaves output j at slot t;
// this maximizes throughput and minimizes average delay, and under (R, B)
// leaky-bucket traffic its queuing delay is at most B slots (Cruz).
package shadow

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Switch is the FCFS output-queued reference switch. Arrivals of a slot are
// enqueued in global sequence order and each output emits at most one cell
// per slot, in the same slot it arrived when the output is idle.
type Switch struct {
	n      int
	queues []queue.FIFO[cell.Cell]
	// active is the sorted list of outputs with a non-empty queue, inSet
	// marks membership, and added stages the outputs that became non-empty
	// this slot (merged in before the departure sweep). The sweep then
	// costs O(backlogged outputs + arrivals) instead of O(N) — at large N
	// with light load the per-slot walk over empty queues dominated the
	// whole shadow step.
	active []cell.Port
	added  []cell.Port
	inSet  []bool
	// Accounting for work-conservation checks and experiment reports.
	arrived  uint64
	departed uint64
	lastSlot cell.Time
}

// New returns an n x n reference switch. It panics if n <= 0.
func New(n int) *Switch {
	if n <= 0 {
		panic(fmt.Sprintf("shadow: invalid port count %d", n))
	}
	return &Switch{n: n, queues: make([]queue.FIFO[cell.Cell], n), inSet: make([]bool, n), lastSlot: -1}
}

// Ports returns N.
func (s *Switch) Ports() int { return s.n }

// Step advances the switch by one slot: the given cells (already stamped,
// in sequence order, at most one per input) arrive, and each non-empty
// output queue emits its head. Departing cells are appended to dst with
// their Depart stamp set, and the extended slice is returned.
//
// Slots must be presented in strictly increasing order; silent slots in
// between may be skipped only if no cells are queued (otherwise the skipped
// departures would be lost), so callers normally call Step for every slot
// until Drained reports true.
func (s *Switch) Step(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) []cell.Cell {
	if t <= s.lastSlot {
		panic(fmt.Sprintf("shadow: non-monotone slot %d after %d", t, s.lastSlot))
	}
	if t != s.lastSlot+1 && s.arrived != s.departed {
		panic(fmt.Sprintf("shadow: skipped from slot %d to %d with cells queued", s.lastSlot, t))
	}
	s.lastSlot = t
	for _, c := range arrivals {
		if c.Arrive != t {
			panic(fmt.Sprintf("shadow: cell %v presented at slot %d", c, t))
		}
		if int(c.Flow.Out) < 0 || int(c.Flow.Out) >= s.n {
			panic(fmt.Sprintf("shadow: destination out of range: %v", c))
		}
		s.queues[c.Flow.Out].Push(c)
		s.arrived++
		if !s.inSet[c.Flow.Out] {
			s.inSet[c.Flow.Out] = true
			s.added = append(s.added, c.Flow.Out)
		}
	}
	s.merge()
	// Every active queue is non-empty by construction, so each emits its
	// head; ascending output order matches the historical full-port walk.
	keep := s.active[:0]
	for _, j := range s.active {
		c := s.queues[j].Pop()
		c.Depart = t
		dst = append(dst, c)
		s.departed++
		if s.queues[j].Empty() {
			s.inSet[j] = false
		} else {
			keep = append(keep, j)
		}
	}
	s.active = keep
	return dst
}

// merge folds the slot's newly non-empty outputs into the sorted active
// list, allocation-free. Few additions (the steady state) insertion-sort and
// back-merge in place — the inSet guard guarantees the runs are disjoint;
// a burst of many additions falls back to a linear rebuild over the port
// space, which the slot's O(arrivals) work already amortizes.
func (s *Switch) merge() {
	add := s.added
	if len(add) == 0 {
		return
	}
	if len(add) > 32 {
		s.active = s.active[:0]
		for j := 0; j < s.n; j++ {
			if s.inSet[j] {
				s.active = append(s.active, cell.Port(j))
			}
		}
		s.added = s.added[:0]
		return
	}
	for i := 1; i < len(add); i++ {
		for k := i; k > 0 && add[k] < add[k-1]; k-- {
			add[k], add[k-1] = add[k-1], add[k]
		}
	}
	old := len(s.active)
	s.active = append(s.active, add...)
	i, k := old-1, len(add)-1
	for w := len(s.active) - 1; k >= 0; w-- {
		if i >= 0 && s.active[i] > add[k] {
			s.active[w] = s.active[i]
			i--
		} else {
			s.active[w] = add[k]
			k--
		}
	}
	s.added = s.added[:0]
}

// Backlog reports the number of cells currently queued.
func (s *Switch) Backlog() int { return int(s.arrived - s.departed) }

// QueueLen reports the number of cells queued for output j.
func (s *Switch) QueueLen(j cell.Port) int { return s.queues[j].Len() }

// Drained reports whether every queue is empty.
func (s *Switch) Drained() bool { return s.arrived == s.departed }

// Arrived reports the total number of cells accepted so far.
func (s *Switch) Arrived() uint64 { return s.arrived }

// Departed reports the total number of cells emitted so far.
func (s *Switch) Departed() uint64 { return s.departed }

// Oracle predicts FCFS output-queued departure times without running a full
// switch. It is the bookkeeping the centralized CPA algorithm performs: the
// departure slot of a cell arriving at slot t for output j is
// max(previous departure for j + 1, t).
type Oracle struct {
	next []cell.Time // earliest free departure slot per output
}

// NewOracle returns an oracle for an n-output switch.
func NewOracle(n int) *Oracle {
	next := make([]cell.Time, n)
	return &Oracle{next: next}
}

// Departure returns, and reserves, the shadow departure slot of a cell
// arriving at slot t destined for output j. Cells must be presented in
// global FCFS (sequence) order.
func (o *Oracle) Departure(t cell.Time, j cell.Port) cell.Time {
	d := o.next[j]
	if t > d {
		d = t
	}
	o.next[j] = d + 1
	return d
}

// Peek returns the departure slot Departure would assign, without reserving.
func (o *Oracle) Peek(t cell.Time, j cell.Port) cell.Time {
	d := o.next[j]
	if t > d {
		d = t
	}
	return d
}
