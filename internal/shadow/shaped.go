package shadow

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Shaped is a NON-work-conserving reference switch: a jitter-shaping
// output-queued switch that holds every cell for exactly D slots (subject
// to output serialization), deliberately idling while cells wait.
//
// The paper's Discussion explains why such switches make poor references
// for relative queuing delay: "a non-work-conserving reference switch can
// degrade to work at rate r, making the comparison meaningless" — once the
// reference itself delays everything by D, any PPS whose excess is under D
// measures a non-positive relative delay regardless of its dispatching
// quality. Experiment E26 demonstrates exactly that collapse.
type Shaped struct {
	n      int
	d      cell.Time
	queues []queue.FIFO[cell.Cell]
	// nextFree[j] is the earliest slot output j may emit (serialization).
	nextFree []cell.Time
	arrived  uint64
	departed uint64
	lastSlot cell.Time
}

// NewShaped returns an n x n delay-equalizing switch with target delay
// d >= 0 per cell.
func NewShaped(n int, d cell.Time) (*Shaped, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shadow: invalid port count %d", n)
	}
	if d < 0 {
		return nil, fmt.Errorf("shadow: shaping delay must be >= 0, got %d", d)
	}
	return &Shaped{
		n:        n,
		d:        d,
		queues:   make([]queue.FIFO[cell.Cell], n),
		nextFree: make([]cell.Time, n),
		lastSlot: -1,
	}, nil
}

// Ports returns N.
func (s *Shaped) Ports() int { return s.n }

// TargetDelay returns D.
func (s *Shaped) TargetDelay() cell.Time { return s.d }

// Step advances one slot: arrivals enqueue, and each output emits its head
// cell once the cell has aged D slots (one cell per output per slot).
func (s *Shaped) Step(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) []cell.Cell {
	if t <= s.lastSlot {
		panic(fmt.Sprintf("shadow: non-monotone slot %d after %d", t, s.lastSlot))
	}
	s.lastSlot = t
	for _, c := range arrivals {
		if c.Arrive != t {
			panic(fmt.Sprintf("shadow: cell %v presented at slot %d", c, t))
		}
		s.queues[c.Flow.Out].Push(c)
		s.arrived++
	}
	for j := range s.queues {
		if s.queues[j].Empty() {
			continue
		}
		head := s.queues[j].Peek()
		if t-head.Arrive < s.d {
			continue // deliberately idle: non-work-conserving
		}
		c := s.queues[j].Pop()
		c.Depart = t
		dst = append(dst, c)
		s.departed++
	}
	return dst
}

// Drained reports whether all cells departed.
func (s *Shaped) Drained() bool { return s.arrived == s.departed }

// Backlog reports queued cells.
func (s *Shaped) Backlog() int { return int(s.arrived - s.departed) }
