package timing

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func TestGateSeizeAndFree(t *testing.T) {
	g := NewGate(3)
	if !g.Free(0) {
		t.Fatal("new gate should be free")
	}
	if err := g.Seize(0); err != nil {
		t.Fatal(err)
	}
	for slot := cell.Time(0); slot < 3; slot++ {
		if g.Free(slot) {
			t.Errorf("gate should be busy at slot %d", slot)
		}
	}
	if !g.Free(3) {
		t.Error("gate should be free at slot 3")
	}
	if g.FreeAt() != 3 {
		t.Errorf("FreeAt = %d, want 3", g.FreeAt())
	}
}

func TestGateSeizeBusyErrors(t *testing.T) {
	g := NewGate(2)
	if err := g.Seize(5); err != nil {
		t.Fatal(err)
	}
	if err := g.Seize(6); err == nil {
		t.Error("seizing a busy gate must error")
	}
	if err := g.Seize(7); err != nil {
		t.Errorf("gate should be free again at 7: %v", err)
	}
}

func TestGateHoldOne(t *testing.T) {
	g := NewGate(1)
	for slot := cell.Time(0); slot < 5; slot++ {
		if err := g.Seize(slot); err != nil {
			t.Fatalf("hold-1 gate must allow back-to-back seizes: %v", err)
		}
	}
}

func TestGateBadHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGate(0)
}

func TestMatrixIndependence(t *testing.T) {
	m := NewMatrix(2, 3, 4)
	if err := m.Gate(0, 1).Seize(0); err != nil {
		t.Fatal(err)
	}
	// Only (0,1) should be busy.
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			want := !(r == 0 && c == 1)
			if got := m.Gate(r, c).Free(1); got != want {
				t.Errorf("gate(%d,%d).Free = %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestMatrixFreeCols(t *testing.T) {
	m := NewMatrix(1, 4, 2)
	m.Gate(0, 0).Seize(0)
	m.Gate(0, 2).Seize(0)
	got := m.FreeCols(0, 1, nil)
	want := []int{1, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FreeCols = %v, want %v", got, want)
	}
	if m.CountFreeCols(0, 1) != 2 {
		t.Errorf("CountFreeCols = %d", m.CountFreeCols(0, 1))
	}
	if m.CountFreeCols(0, 2) != 4 {
		t.Errorf("all should be free at slot 2, got %d", m.CountFreeCols(0, 2))
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m := NewMatrix(2, 2, 1)
	m.Gate(2, 0)
}

// Property: a gate seized at t is busy exactly for [t, t+hold) and free at
// t+hold, for any hold in [1, 16] and any start slot.
func TestGateOccupancyWindow(t *testing.T) {
	prop := func(holdRaw uint8, startRaw uint16) bool {
		hold := int64(holdRaw%16) + 1
		start := cell.Time(startRaw)
		g := NewGate(hold)
		if err := g.Seize(start); err != nil {
			return false
		}
		for s := start; s < start+cell.Time(hold); s++ {
			if g.Free(s) {
				return false
			}
		}
		return g.Free(start + cell.Time(hold))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the input constraint admits at most ceil(window/hold) seizes in
// any window — i.e. the gate enforces rate r = R/hold.
func TestGateRateLimit(t *testing.T) {
	prop := func(holdRaw uint8, tries []bool) bool {
		hold := int64(holdRaw%8) + 1
		g := NewGate(hold)
		seizes := 0
		slots := cell.Time(0)
		for _, attempt := range tries {
			if attempt && g.Free(slots) {
				if err := g.Seize(slots); err != nil {
					return false
				}
				seizes++
			}
			slots++
		}
		if slots == 0 {
			return true
		}
		maxAllowed := (int64(slots) + hold - 1) / hold
		return int64(seizes) <= maxAllowed
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
