// Package timing models the rate-limited internal lines of the PPS.
//
// Section 2 of the paper: "A cell sent from an input-port i to a plane k is
// transmitted over r' time-slots; transmission takes place in the first
// time-slot of this period, and then the line between i and k is not
// utilized in the next r'-1 time-slots." Violating this is the *input
// constraint*; the *output constraint* is the symmetric rule for the lines
// between planes and output-ports.
//
// A Gate tracks one such line; a Matrix tracks the full N x K (or K x N)
// bank of lines on one side of the center stage.
package timing

import (
	"fmt"
	"math/bits"

	"ppsim/internal/cell"
)

// Gate is one internal line running at rate r = R/holdSlots. Seizing the
// gate at slot t makes it busy for slots t .. t+holdSlots-1.
type Gate struct {
	holdSlots int64
	freeAt    cell.Time // first slot at which the gate may be seized again
}

// NewGate returns a gate that is busy for hold slots per transmission.
// It panics if hold < 1.
func NewGate(hold int64) *Gate {
	g := &Gate{}
	g.Init(hold)
	return g
}

// Init (re)initializes the gate in place; used by Matrix to lay gates out
// contiguously. It panics if hold < 1.
func (g *Gate) Init(hold int64) {
	if hold < 1 {
		panic("timing: gate hold must be >= 1 slot")
	}
	g.holdSlots = hold
	g.freeAt = 0
}

// Free reports whether the gate may be seized at slot t.
func (g *Gate) Free(t cell.Time) bool { return t >= g.freeAt }

// FreeAt returns the earliest slot at which the gate may be seized.
func (g *Gate) FreeAt() cell.Time { return g.freeAt }

// Hold returns the per-transmission occupancy r' in slots.
func (g *Gate) Hold() int64 { return g.holdSlots }

// Seize marks the gate busy starting at slot t. It returns an error if the
// gate is not free at t — the caller (the fabric) treats that as a rate
// constraint violation by the algorithm under test.
func (g *Gate) Seize(t cell.Time) error {
	if !g.Free(t) {
		return fmt.Errorf("timing: gate seized at slot %d but busy until %d", t, g.freeAt)
	}
	g.freeAt = t + cell.Time(g.holdSlots)
	return nil
}

// Matrix is a dense rows x cols bank of gates, all with the same hold time.
// For the input side rows index input-ports and cols index planes; for the
// output side rows index planes and cols index output-ports.
//
// When cols <= 64 the matrix additionally keeps one busy bitmask per row, so
// FreeColsMask answers "which columns may row r use at slot t" in O(busy)
// — at most hold-1 bits are ever busy per row, independent of cols. The
// masks are maintained by SeizeAt; rows seized through Gate().Seize directly
// are not tracked, so a matrix whose masks are consulted must be seized via
// SeizeAt (the fabric does this for the input-side matrix).
type Matrix struct {
	rows, cols int
	gates      []Gate
	busy       []uint64 // per-row over-approximation of busy cols; nil when cols > 64
}

// NewMatrix returns a rows x cols matrix of gates with the given hold.
// It panics on non-positive dimensions.
func NewMatrix(rows, cols int, hold int64) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("timing: matrix dimensions must be positive")
	}
	m := &Matrix{rows: rows, cols: cols, gates: make([]Gate, rows*cols)}
	for i := range m.gates {
		m.gates[i].Init(hold)
	}
	if cols <= 64 {
		m.busy = make([]uint64, rows)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Gate returns the gate at (row, col).
func (m *Matrix) Gate(row, col int) *Gate {
	if row < 0 || row >= m.rows || col < 0 || col >= m.cols {
		panic(fmt.Sprintf("timing: gate (%d,%d) out of %dx%d matrix", row, col, m.rows, m.cols))
	}
	return &m.gates[row*m.cols+col]
}

// Masked reports whether the matrix maintains per-row busy masks (cols <= 64).
func (m *Matrix) Masked() bool { return m.busy != nil }

// SeizeAt seizes gate (row, col) at slot t, keeping the row's busy mask (if
// any) current. Callers that consult FreeColsMask must seize exclusively
// through this method.
func (m *Matrix) SeizeAt(row, col int, t cell.Time) error {
	if err := m.Gate(row, col).Seize(t); err != nil {
		return err
	}
	if m.busy != nil {
		m.busy[row] |= 1 << uint(col)
	}
	return nil
}

// FreeColsMask returns the bitmask of columns whose gate in the given row is
// free at slot t. Only valid on a Masked matrix. Queries for a row must come
// with non-decreasing t: busy bits whose gates have expired by t are cleared
// as they are discovered, which keeps each call O(busy bits) — at most
// hold-1 per row — but would mis-report a later query at an earlier slot.
func (m *Matrix) FreeColsMask(row int, t cell.Time) uint64 {
	if m.busy == nil {
		panic("timing: FreeColsMask on an unmasked matrix (cols > 64)")
	}
	b := m.busy[row]
	base := row * m.cols
	for rem := b; rem != 0; rem &= rem - 1 {
		c := bits.TrailingZeros64(rem)
		if m.gates[base+c].Free(t) {
			b &^= 1 << uint(c)
		}
	}
	m.busy[row] = b
	return ^uint64(0) >> uint(64-m.cols) &^ b
}

// FreeCols returns the columns whose gate in the given row is free at t,
// appended to dst (which may be nil). Demultiplexors use this to enumerate
// the planes an input may legally dispatch to this slot.
func (m *Matrix) FreeCols(row int, t cell.Time, dst []int) []int {
	base := row * m.cols
	for c := 0; c < m.cols; c++ {
		if m.gates[base+c].Free(t) {
			dst = append(dst, c)
		}
	}
	return dst
}

// CountFreeCols reports how many gates in the row are free at t.
func (m *Matrix) CountFreeCols(row int, t cell.Time) int {
	n := 0
	base := row * m.cols
	for c := 0; c < m.cols; c++ {
		if m.gates[base+c].Free(t) {
			n++
		}
	}
	return n
}
