package ppsim

import (
	"ppsim/internal/framer"
)

// Packet-level API: the paper's model assumes fragmentation and reassembly
// happen outside the switch; these re-exports provide them. Offer packets
// to a Segmenter, run it as the traffic source, and feed PPS departures to
// a Reassembler via Options.OnPPSDepart.

type (
	// Packet is one variable-length unit offered to an input.
	Packet = framer.Packet
	// Segmenter fragments packets into cells and acts as a Source.
	Segmenter = framer.Segmenter
	// Reassembler completes packets from switch departures.
	Reassembler = framer.Reassembler
)

// NewSegmenter returns a segmenter for an n-port switch.
func NewSegmenter(n int) *Segmenter { return framer.NewSegmenter(n) }

// NewReassembler returns a reassembler bound to the segmentation.
func NewReassembler(seg *Segmenter) *Reassembler { return framer.NewReassembler(seg) }
