package ppsim_test

import (
	"strings"
	"testing"

	"ppsim"
)

func TestRunSeedsRandomizedDispatch(t *testing.T) {
	const n = 16
	cfg := ppsim.Config{N: n, K: 4, RPrime: 3, Algorithm: ppsim.Algorithm{Name: "random"}}
	tr, err := ppsim.ConcentrationTrace(n, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ppsim.RunSeeds(cfg, 20,
		func(seed int64, base ppsim.Config) ppsim.Config {
			base.Algorithm.Seed = seed
			return base
		},
		func(int64) ppsim.Source { return tr },
		ppsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Runs != 20 {
		t.Errorf("Runs = %d", dist.Runs)
	}
	if dist.Min > dist.P50 || dist.P50 > dist.P99 || dist.P99 > dist.Max {
		t.Errorf("quantiles out of order: %v", dist)
	}
	// Randomization keeps the delay far below the deterministic worst
	// case (N-1)(r'-1) = 30.
	if dist.Max >= 30 {
		t.Errorf("randomized max %d at the deterministic worst case", dist.Max)
	}
	if !strings.Contains(dist.String(), "runs=20") {
		t.Errorf("String = %q", dist.String())
	}
}

func TestRunSeedsDeterministicIsConstant(t *testing.T) {
	cfg := ppsim.Config{N: 8, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	tr, err := ppsim.ConcentrationTrace(8, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ppsim.RunSeeds(cfg, 5, nil, func(int64) ppsim.Source { return tr }, ppsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Min != dist.Max {
		t.Errorf("deterministic algorithm should give a point distribution: %v", dist)
	}
	if dist.Min != 7 {
		t.Errorf("expected (N-1)(r'-1) = 7, got %d", dist.Min)
	}
}

func TestRunSeedsValidation(t *testing.T) {
	cfg := ppsim.Config{N: 4, K: 2, RPrime: 1, Algorithm: ppsim.Algorithm{Name: "rr"}}
	if _, err := ppsim.RunSeeds(cfg, 0, nil, func(int64) ppsim.Source { return nil }, ppsim.Options{}); err == nil {
		t.Error("runs=0 must error")
	}
	if _, err := ppsim.RunSeeds(cfg, 1, nil, nil, ppsim.Options{}); err == nil {
		t.Error("nil factory must error")
	}
	bad := cfg
	bad.Algorithm.Name = "no-such"
	if _, err := ppsim.RunSeeds(bad, 1, nil, func(int64) ppsim.Source {
		return ppsim.NewBernoulli(4, 0.5, 10, 1)
	}, ppsim.Options{}); err == nil {
		t.Error("per-run errors must surface")
	}
}
