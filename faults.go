package ppsim

import "ppsim/internal/faults"

// Fault injection: a declarative, deterministic schedule of center-stage
// plane failures (Section 3 of the paper argues fault tolerance is the
// reason every demultiplexor must reach every plane). Attach a schedule via
// Options.Faults; pick what a dispatch into a dead plane means via
// Options.FaultPolicy. See the faults package for the schedule builder and
// the -faults spec grammar shared by ppssim and ppsbench.
type (
	// FaultSchedule is a declarative fail/recover plan (plus optional
	// per-plane cell loss). Build with NewFaultSchedule or ParseFaultSpec;
	// a built schedule is immutable and may be shared across runs.
	FaultSchedule = faults.Schedule
	// FaultEvent is one scheduled plane state change.
	FaultEvent = faults.Event
	// FaultPolicy selects the degradation behavior: FaultAbort or
	// FaultDropCount.
	FaultPolicy = faults.Policy
)

// Degradation policies.
const (
	// FaultAbort keeps the formal model's no-drop semantics: a dispatch
	// into a failed plane aborts the run with an error (the default).
	FaultAbort = faults.Abort
	// FaultDropCount converts dead-plane losses into accounted drops
	// (Result.Drops, Report.DropsPerPlane/DropsPerInput); the run
	// completes and reports the degraded figures.
	FaultDropCount = faults.DropCount
)

// NewFaultSchedule returns an empty schedule; chain FailAt / RecoverAt /
// Outage / WithLoss / WithSeed to populate it.
func NewFaultSchedule() *FaultSchedule { return faults.NewSchedule() }

// ParseFaultSpec parses the comma-separated fault spec grammar of the
// -faults CLI flags, e.g. "fail:0@1000,recover:0@3000,loss:2@0.001,seed:7".
func ParseFaultSpec(spec string) (*FaultSchedule, error) { return faults.ParseSpec(spec) }

// ParseFaultPolicy maps "abort" or "dropcount" to its policy value.
func ParseFaultPolicy(s string) (FaultPolicy, error) { return faults.ParsePolicy(s) }
