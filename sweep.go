package ppsim

import (
	"fmt"
	"runtime"
	"sync"
)

// SweepPoint is one cell of a parameter sweep: a switch configuration, a
// fresh traffic source, and run options. NewSource is a factory because
// sources are stateful (randomized generators, regulators) and sweep points
// run concurrently.
type SweepPoint struct {
	// Label identifies the point in results and reports.
	Label string
	// Config is the switch under test.
	Config Config
	// NewSource builds this point's traffic; it is called exactly once.
	NewSource func() Source
	// Options tunes the run.
	Options Options
}

// SweepResult pairs a point's label with its outcome.
type SweepResult struct {
	Label  string
	Result Result
	Err    error
}

// RunSweep executes the points concurrently on a bounded worker pool and
// returns the results in point order. Each point gets a fresh switch,
// shadow and source, so points are fully independent; workers <= 0 uses
// GOMAXPROCS. A point's failure is recorded in its SweepResult and does not
// stop the sweep.
//
// Simulations are deterministic, so a sweep's results do not depend on the
// worker count — only the wall-clock time does.
func RunSweep(points []SweepPoint, workers int) []SweepResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]SweepResult, len(points))
	if len(points) == 0 {
		return results
	}
	var wg sync.WaitGroup
	// Buffered to the full point count: the feed loop below then never
	// blocks, so a worker that dies without draining the channel (it
	// shouldn't — runPoint converts panics to errors — but defense in depth)
	// cannot deadlock the sweep against a blocked send.
	idx := make(chan int, len(points))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runPoint(points[i])
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runPoint executes one sweep point, converting panics from misconfigured
// factories into errors so one bad point cannot take down the sweep.
func runPoint(p SweepPoint) (sr SweepResult) {
	sr.Label = p.Label
	defer func() {
		if r := recover(); r != nil {
			sr.Err = fmt.Errorf("ppsim: sweep point %q panicked: %v", p.Label, r)
		}
	}()
	if p.NewSource == nil {
		sr.Err = fmt.Errorf("ppsim: sweep point %q has no source factory", p.Label)
		return sr
	}
	res, err := Run(p.Config, p.NewSource(), p.Options)
	sr.Result, sr.Err = res, err
	return sr
}
