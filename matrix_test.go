package ppsim_test

import (
	"fmt"
	"testing"

	"ppsim"
)

// TestAlgorithmTrafficMatrix smoke-runs every registered algorithm against
// every traffic family through the public API: each combination must drain
// with all invariants intact (the fabric audits per slot) and with a
// sensible worst-case relative delay. This is the broad compatibility net
// under the targeted per-theorem tests.
func TestAlgorithmTrafficMatrix(t *testing.T) {
	const n, k, rp = 8, 8, 4 // S = 2: every algorithm's comfort zone
	traffics := []struct {
		name string
		mk   func() ppsim.Source
	}{
		{"bernoulli", func() ppsim.Source { return ppsim.NewBernoulli(n, 0.6, 300, 7) }},
		{"shaped-bursty", func() ppsim.Source {
			o, err := ppsim.NewOnOff(n, 6, 3, 300, 7)
			if err != nil {
				t.Fatal(err)
			}
			return ppsim.Shape(n, 4, o)
		}},
		{"permutation", func() ppsim.Source {
			perm := make([]ppsim.Port, n)
			for i := range perm {
				perm[i] = ppsim.Port((i + 3) % n)
			}
			p, err := ppsim.NewPermutation(perm, 200)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"concentration", func() ppsim.Source {
			tr, err := ppsim.ConcentrationTrace(n, n, 0)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
	}
	for _, name := range ppsim.AlgorithmNames() {
		// Partition size must be >= r' and divide K.
		alg := ppsim.Algorithm{Name: name, D: int(rp), U: 3, H: 2, Seed: 5, Capacity: -1}
		cfg := ppsim.Config{N: n, K: k, RPrime: rp, Algorithm: alg}
		if alg.InputBuffered() {
			cfg.BufferCap = -1
		}
		for _, tr := range traffics {
			t.Run(fmt.Sprintf("%s/%s", name, tr.name), func(t *testing.T) {
				res, err := ppsim.Run(cfg, tr.mk(), ppsim.Options{Horizon: 5000, Validate: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Report.Cells == 0 {
					t.Fatal("no cells switched")
				}
				// Generous sanity ceiling: nothing should exceed the
				// Iyer-McKeown N*r' envelope plus the traffic burstiness
				// and the buffered lag on these benign workloads.
				limit := ppsim.Time(n*int(rp)) + ppsim.Time(res.Burstiness) + alg.U
				if res.Report.MaxRQD > limit {
					t.Errorf("MaxRQD %d above the sanity envelope %d", res.Report.MaxRQD, limit)
				}
			})
		}
	}
}
