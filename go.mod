module ppsim

go 1.22
