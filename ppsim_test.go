package ppsim_test

import (
	"strings"
	"testing"

	"ppsim"
)

func TestRunQuickstart(t *testing.T) {
	cfg := ppsim.Config{
		N: 8, K: 4, RPrime: 2,
		Algorithm: ppsim.Algorithm{Name: "rr"},
	}
	res, err := ppsim.Run(cfg, ppsim.NewBernoulli(8, 0.5, 500, 1), ppsim.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Cells == 0 {
		t.Fatal("no cells switched")
	}
	if res.AlgorithmName != "rr" {
		t.Errorf("AlgorithmName = %q", res.AlgorithmName)
	}
	if res.Report.MaxRQD < 0 {
		t.Errorf("MaxRQD = %d; execution maximum cannot be negative for drained runs with shared arrivals", res.Report.MaxRQD)
	}
}

func TestCPAZeroRQDPublicAPI(t *testing.T) {
	// The Iyer-Awadallah-McKeown baseline (E11): S >= 2 gives exact FCFS
	// OQ mimicking.
	cfg := ppsim.Config{
		N: 8, K: 8, RPrime: 4, // S = 2
		Algorithm: ppsim.Algorithm{Name: "cpa"},
	}
	src := ppsim.Shape(8, 0, ppsim.NewBernoulli(8, 0.6, 400, 7))
	res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 3000, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxRQD != 0 {
		t.Errorf("CPA MaxRQD = %d, want 0 at S=2", res.Report.MaxRQD)
	}
	if res.Burstiness != 0 {
		t.Errorf("shaped traffic burstiness = %d, want 0", res.Burstiness)
	}
}

func TestCompare(t *testing.T) {
	cfg := ppsim.Config{N: 6, K: 6, RPrime: 2}
	tr, err := ppsim.ConcentrationTrace(6, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppsim.Compare(cfg, []ppsim.Algorithm{
		{Name: "rr"},
		{Name: "cpa"},
	}, tr, ppsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res["cpa"].Report.MaxRQD != 0 {
		t.Errorf("cpa MaxRQD = %d", res["cpa"].Report.MaxRQD)
	}
	if res["rr"].Report.MaxRQD <= res["cpa"].Report.MaxRQD {
		t.Errorf("rr should lose to cpa under concentration: %d vs %d",
			res["rr"].Report.MaxRQD, res["cpa"].Report.MaxRQD)
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []ppsim.Config{
		{N: 0, K: 1, RPrime: 1, Algorithm: ppsim.Algorithm{Name: "rr"}},
		{N: 4, K: 2, RPrime: 1, Algorithm: ppsim.Algorithm{Name: "no-such"}},
		{N: 4, K: 2, RPrime: 1},
		{N: 4, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "partition", D: 3}},
		{N: 4, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "ftd", H: 0.5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := (ppsim.Config{N: 4, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "cpa"}}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAlgorithmNamesListsRegistry(t *testing.T) {
	names := ppsim.AlgorithmNames()
	if len(names) != 13 {
		t.Errorf("registry has %d names: %v", len(names), names)
	}
	for _, n := range names {
		cfg := ppsim.Config{N: 8, K: 8, RPrime: 2, Algorithm: ppsim.Algorithm{Name: n, D: 2, U: 2, H: 2, Capacity: -1}}
		if n == "buffered-cpa" || n == "buffered-rr" {
			cfg.BufferCap = -1
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("registered algorithm %q does not construct: %v", n, err)
		}
	}
	unknown := ppsim.Algorithm{Name: "bogus"}
	if err := (ppsim.Config{N: 4, K: 2, RPrime: 1, Algorithm: unknown}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("unknown algorithm error missing: %v", err)
	}
}

func TestInputBuffered(t *testing.T) {
	cases := map[ppsim.Algorithm]bool{
		{Name: "rr"}:                 false,
		{Name: "cpa"}:                false,
		{Name: "buffered-rr"}:        true,
		{Name: "buffered-cpa", U: 3}: true,
		{Name: "buffered-cpa", U: 0}: false,
	}
	for a, want := range cases {
		if got := a.InputBuffered(); got != want {
			t.Errorf("%v.InputBuffered() = %v, want %v", a, got, want)
		}
	}
}

func TestBufferedTheorem12PublicAPI(t *testing.T) {
	// Input-buffered u-RT CPA at S=2: relative queuing delay <= u
	// (Theorem 12), under both random and adversarial traffic.
	const u = 4
	cfg := ppsim.Config{
		N: 8, K: 8, RPrime: 4, BufferCap: u + 1,
		Algorithm: ppsim.Algorithm{Name: "buffered-cpa", U: u},
	}
	src := ppsim.Shape(8, 2, ppsim.NewBernoulli(8, 0.6, 400, 3))
	res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxRQD > u {
		t.Errorf("buffered-cpa MaxRQD = %d, want <= u = %d", res.Report.MaxRQD, u)
	}
}

func TestHerdingTraceSteeringTracePublicAPI(t *testing.T) {
	cfg := ppsim.Config{N: 8, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	tr, err := ppsim.SteeringTrace(cfg, ppsim.AllInputs(8), 0, 1, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppsim.Run(cfg, tr, ppsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := ppsim.Time(7); res.Report.MaxRQD < want {
		t.Errorf("steered MaxRQD = %d, want >= %d", res.Report.MaxRQD, want)
	}

	ht, err := ppsim.HerdingTrace(8, 0, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ht.Count() != 14 {
		t.Errorf("herding trace count = %d", ht.Count())
	}
}

func TestPartitionInputs(t *testing.T) {
	ins := ppsim.PartitionInputs(8, 4, 2, 3) // plane 3 -> group 1
	want := []ppsim.Port{1, 3, 5, 7}
	if len(ins) != len(want) {
		t.Fatalf("PartitionInputs = %v", ins)
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("PartitionInputs = %v, want %v", ins, want)
		}
	}
}

func TestWindowBurstinessPublicAPI(t *testing.T) {
	fl := ppsim.NewFlood(4, 0, 50)
	small, err := ppsim.WindowBurstiness(4, fl, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ppsim.WindowBurstiness(4, fl, 40)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Errorf("flood window excess must grow: tau=2 -> %d, tau=40 -> %d", small, big)
	}
}
