// Package ppsim is a simulation laboratory for parallel packet switches
// (PPS), reproducing "The Inherent Queuing Delay of Parallel Packet
// Switches" (Attiya & Hay, SPAA 2004).
//
// A PPS is a three-stage Clos network: N input-ports, K < N center-stage
// switches ("planes") running at internal rate r < R, and N output-ports.
// The package provides the slotted-time formal model of the paper — input
// and output rate constraints on the internal lines, bufferless and
// input-buffered variants — together with every demultiplexing algorithm
// the paper analyses, the work-conserving FCFS output-queued reference
// switch, leaky-bucket traffic machinery, and the adversarial traffic
// constructions from the lower-bound proofs.
//
// The primary entry point is Run, which executes a traffic source through a
// configured PPS and the shadow reference switch and reports the relative
// queuing delay and relative delay jitter:
//
//	cfg := ppsim.Config{N: 16, K: 8, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
//	res, err := ppsim.Run(cfg, ppsim.NewBernoulli(16, 0.6, 10_000, 1), ppsim.Options{})
//	fmt.Println(res.Report)
package ppsim

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/metrics"
	"ppsim/internal/mux"
	"ppsim/internal/traffic"
)

// Re-exported core types. These aliases are the public names; the internal
// packages are implementation detail.
type (
	// Time is a discrete time-slot index.
	Time = cell.Time
	// Port identifies an input- or output-port.
	Port = cell.Port
	// PlaneID identifies a center-stage plane.
	PlaneID = cell.Plane
	// Cell is one fixed-size switched cell with its timing stamps.
	Cell = cell.Cell
	// Flow is an (input, output) pair.
	Flow = cell.Flow
	// Source produces cell arrivals per slot.
	Source = traffic.Source
	// Arrival is one (input, output) arrival event.
	Arrival = traffic.Arrival
	// Trace is an explicit finite arrival schedule.
	Trace = traffic.Trace
	// Report carries the relative-delay figures of one execution.
	Report = metrics.Report
	// Result is a Report plus execution-level measurements.
	Result = harness.Result
	// Options tunes a Run.
	Options = harness.Options
	// Engine selects the slot-execution core (see EngineAuto et al.).
	Engine = harness.Engine
)

// Engine constants, re-exported for Options.Engine: EngineAuto (the zero
// value) picks the fastest eligible core, the others force one with
// documented degradation recorded in Result.Engine/Result.EngineReason.
const (
	EngineAuto        = harness.EngineAuto
	EngineStepped     = harness.EngineStepped
	EngineFastForward = harness.EngineFastForward
	EngineEvent       = harness.EngineEvent
)

// ParseEngine maps a CLI flag value ("auto", "stepped", "fastforward",
// "event") to an Engine.
func ParseEngine(s string) (Engine, error) { return harness.ParseEngine(s) }

// NoTime is the unset-time sentinel (used as "unbounded" for sources).
const NoTime = cell.None

// Config describes the switch under test.
type Config struct {
	// N is the number of external ports.
	N int
	// K is the number of center-stage planes.
	K int
	// RPrime is r' = R/r >= 1; the speedup is S = K/RPrime.
	RPrime int64
	// BufferCap bounds input-port buffers: 0 = bufferless PPS (the
	// default), -1 = unbounded, positive = per-input capacity.
	BufferCap int
	// LazyMux switches the output multiplexors from eager pulling to
	// one-pull-per-slot FCFS (an ablation; see DESIGN.md §5).
	LazyMux bool
	// MuxBudget, when positive, bounds each output's pulls per slot
	// (the dial between lazy = 1 and eager >= K); it takes precedence
	// over LazyMux.
	MuxBudget int
	// DisableChecks turns off the per-slot conservation audit (it is on
	// by default; turn off only for throughput benchmarking).
	DisableChecks bool
	// Algorithm selects the demultiplexing algorithm.
	Algorithm Algorithm
}

// Speedup returns S = K / r'.
func (c Config) Speedup() float64 { return float64(c.K) / float64(c.RPrime) }

// ResolveWorkers reports the effective stage-parallel worker count an
// Options.Workers request resolves to for an N-port switch: 0 means the
// serial engine, a positive value the size of the persistent worker pool
// (clamped to N). -1 (auto) derives the count from GOMAXPROCS and N with a
// floor of 16 ports per shard — auto never spawns a pool whose shards hold
// fewer than 16 outputs, falling back to serial (so e.g. N=16 always
// resolves auto to 0, and N=64 to at most 4 workers), because below that
// the per-slot stage barrier costs more than the sharded work. An explicit
// positive request bypasses the floor. Result.Workers records what a run
// actually used.
func ResolveWorkers(workers, n int) int { return fabric.ResolveWorkers(workers, n) }

// fabricConfig lowers the public config.
func (c Config) fabricConfig() fabric.Config {
	fc := fabric.Config{
		N:               c.N,
		K:               c.K,
		RPrime:          c.RPrime,
		BufferCap:       c.BufferCap,
		CheckInvariants: !c.DisableChecks,
	}
	switch {
	case c.MuxBudget > 0:
		fc.Mux = mux.BoundedEager{Max: c.MuxBudget}
	case c.LazyMux:
		fc.Mux = mux.LazyFCFS{}
	}
	return fc
}

// Run executes src through a fresh PPS configured by cfg and through the
// shadow FCFS output-queued reference switch, until both drain, and returns
// the matched measurements.
func Run(cfg Config, src Source, opts Options) (Result, error) {
	factory, err := cfg.Algorithm.factory()
	if err != nil {
		return Result{}, err
	}
	// The public API always reports per-output utilization (its historical
	// behavior); internal callers opt in per run.
	opts.Utilization = true
	return harness.Run(cfg.fabricConfig(), factory, src, opts)
}

// Compare runs the same finite source through one switch per algorithm and
// returns the results keyed by algorithm name, for side-by-side tables.
func Compare(cfg Config, algs []Algorithm, src *Trace, opts Options) (map[string]Result, error) {
	out := make(map[string]Result, len(algs))
	for _, a := range algs {
		c := cfg
		c.Algorithm = a
		res, err := Run(c, src, opts)
		if err != nil {
			return nil, fmt.Errorf("ppsim: algorithm %q: %w", a.Name, err)
		}
		out[res.AlgorithmName] = res
	}
	return out, nil
}

// Validate checks the configuration without running anything: it builds a
// throwaway switch, which constructs the algorithm and surfaces geometry
// and parameter errors (e.g. a partition size that does not divide K).
func (c Config) Validate() error {
	factory, err := c.Algorithm.factory()
	if err != nil {
		return err
	}
	_, err = fabric.New(c.fabricConfig(), factory)
	return err
}

// internalFactory exposes the lowered algorithm factory to sibling files.
func (c Config) internalFactory() (func(demux.Env) (demux.Algorithm, error), error) {
	return c.Algorithm.factory()
}
