package ppsim

import (
	"io"

	"ppsim/internal/cell"
	"ppsim/internal/obs"
)

// Public names for the observability layer (internal/obs). Probes and
// tracers plug into Options.Probes / Options.Tracer; see the README's
// "Observability" section for the probe list and the JSONL trace schema.
type (
	// Probe samples the switch once per slot (after the mux phase) into
	// ring-buffered time series.
	Probe = obs.Probe
	// Series is one named, ring-buffered time series with stride
	// decimation.
	Series = obs.Series
	// SeriesPoint is one (slot, value) sample.
	SeriesPoint = obs.Point
	// Tracer receives the structured event stream from the fabric.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// TraceSink consumes trace events (ring, JSONL, or null).
	TraceSink = obs.Sink
	// RingSink retains the last N trace events in memory.
	RingSink = obs.RingSink
	// MetricsRegistry names and owns counters, gauges and histograms;
	// plug one into Options.Metrics for cumulative run telemetry.
	MetricsRegistry = obs.Registry
	// Telemetry aggregates live run state (per-slot gauges plus streaming
	// delay histograms); plug one into Options.Telemetry, or install it
	// process-wide with SetGlobalTelemetry, and snapshot it mid-run.
	Telemetry = obs.Telemetry
	// TelemetrySnapshot is the frozen live state (the /telemetry JSON
	// schema of ppsexp).
	TelemetrySnapshot = obs.TelemetrySnapshot
	// Quantiles is the headline summary of one streaming delay histogram:
	// exact n/mean/min/max plus log-bucketed p50/p99/p999.
	Quantiles = obs.Quantiles
	// DelayQuantiles is the per-component percentile block carried by
	// Report.Percentiles and telemetry snapshots: RQD, the demux/plane/
	// resequencer decomposition, total delay, and inter-departure gap.
	DelayQuantiles = obs.DelayQuantiles
)

// StandardProbes returns the full probe set for an N-port, K-plane switch:
// per-plane backlog, cumulative peak plane queue, input buffer depths, mux
// pull rate, departing-front RQD, demux dispatch imbalance, and the
// PPS-vs-shadow in-flight populations. stride decimates sampling (1 =
// every slot); capacity bounds each series' ring (<= 0 uses the default).
func StandardProbes(n, k int, stride Time, capacity int) []Probe {
	return obs.StandardProbes(n, k, cell.Time(stride), capacity)
}

// NewJSONLTracer returns a tracer writing one JSON object per event to w.
func NewJSONLTracer(w io.Writer) *Tracer {
	return obs.NewTracer(obs.NewJSONLSink(w))
}

// NewRingTracer returns a tracer retaining the last capacity events, plus
// the ring to read them back from.
func NewRingTracer(capacity int) (*Tracer, *RingSink) {
	ring := obs.NewRingSink(capacity)
	return obs.NewTracer(ring), ring
}

// NewMetricsRegistry returns an empty, concurrency-safe metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTelemetry returns an empty live-telemetry aggregator.
func NewTelemetry() *Telemetry { return obs.NewTelemetry() }

// SetGlobalTelemetry installs t as the process-wide default aggregator
// (nil uninstalls): runs whose Options.Telemetry is nil report into it.
func SetGlobalTelemetry(t *Telemetry) { obs.SetGlobalTelemetry(t) }

// GlobalTelemetry returns the process-wide aggregator, or nil.
func GlobalTelemetry() *Telemetry { return obs.GlobalTelemetry() }

// WriteSeriesCSV streams series in long format ("series,slot,value").
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	return obs.WriteSeriesCSV(w, series)
}

// WriteSeriesJSON writes series as a JSON array of
// {"series": name, "points": [[slot, value], ...]} objects.
func WriteSeriesJSON(w io.Writer, series []*Series) error {
	return obs.WriteSeriesJSON(w, series)
}
